//! Testcase construction and the measure → optimize → re-route → measure
//! flow.

use crate::report::{ExperimentRow, Snapshot};
use std::sync::Arc;
use vm1_core::{calculate_obj, Vm1Config, Vm1Optimizer};
use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
use vm1_netlist::Design;
use vm1_obs::{MetricsHandle, Stage, Telemetry};
use vm1_place::{greedy_refine, place, PlaceConfig};
use vm1_route::{route, RouteResult, RouterConfig};
use vm1_tech::{CellArch, Library};
use vm1_timing::{analyze, min_clock_period, power};

/// Parameters of a testcase build.
#[derive(Clone, Debug)]
pub struct FlowConfig {
    /// Which of the paper's designs to emulate.
    pub profile: DesignProfile,
    /// Cell architecture / library.
    pub arch: CellArch,
    /// Instance-count scale relative to the paper (DESIGN.md §5; default
    /// 0.05).
    pub scale: f64,
    /// Core utilization (paper: 0.75 for Table 2, 0.80–0.84 for Fig. 8).
    pub utilization: f64,
    /// Seed for the generator and placer.
    pub seed: u64,
    /// Router settings.
    pub router: RouterConfig,
}

impl FlowConfig {
    /// A testcase at the default reduced scale.
    #[must_use]
    pub fn new(profile: DesignProfile, arch: CellArch) -> FlowConfig {
        FlowConfig {
            profile,
            arch,
            scale: 0.05,
            utilization: 0.75,
            seed: 42,
            router: RouterConfig::default(),
        }
    }

    /// Overrides the scale.
    #[must_use]
    pub fn with_scale(mut self, scale: f64) -> FlowConfig {
        self.scale = scale;
        self
    }

    /// Overrides the utilization.
    #[must_use]
    pub fn with_utilization(mut self, util: f64) -> FlowConfig {
        self.utilization = util;
        self
    }

    /// Overrides the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> FlowConfig {
        self.seed = seed;
        self
    }
}

/// A built and initially-routed testcase.
#[derive(Clone, Debug)]
pub struct Testcase {
    /// The placed design (mutated by optimization).
    pub design: Design,
    /// Clock period (ps), calibrated so the initial design meets timing
    /// with ~2 % margin, like the paper's testcases (WNS ≈ 0 at Init).
    pub clock_ps: f64,
    /// Router settings used for every (re-)route.
    pub router: RouterConfig,
}

/// Generates, places, refines and timing-calibrates a testcase.
///
/// # Panics
///
/// Panics if the synthetic netlist contains a combinational loop or the
/// placer produced an illegal placement (neither can happen for the
/// levelized generator plus legalizing placer).
#[must_use]
pub fn build_testcase(cfg: &FlowConfig) -> Testcase {
    let library = Library::synthetic_7nm(cfg.arch);
    let mut design = GeneratorConfig::profile(cfg.profile)
        .with_scale(cfg.scale)
        .with_utilization(cfg.utilization)
        .generate(&library, cfg.seed);
    place(&mut design, &PlaceConfig::default(), cfg.seed);
    let _refine = greedy_refine(&mut design, 3, 2);
    design.validate_placement().expect("placement is legal"); // lint: allow(documented `# Panics` contract)

    let initial_route = route(&design, &cfg.router);
    let clock_ps = min_clock_period(&design, Some(&initial_route)).expect("acyclic netlist") * 1.02; // lint: allow(documented `# Panics` contract)
    Testcase {
        design,
        clock_ps,
        router: cfg.router.clone(),
    }
}

/// Routes the design and takes a full measurement snapshot.
///
/// # Panics
///
/// Panics on a cyclic netlist (cannot happen for generated designs).
#[must_use]
pub fn measure(tc: &Testcase, vm1_cfg: &Vm1Config) -> (Snapshot, RouteResult) {
    measure_with(tc, vm1_cfg, &MetricsHandle::disabled())
}

/// [`measure`] with a metrics sink: the routing pass is charged to
/// [`Stage::Route`] and the STA/power analysis to [`Stage::Analysis`].
///
/// # Panics
///
/// Panics on a cyclic netlist (cannot happen for generated designs), or
/// when [`crate::audit_mode`] is enabled and the design being measured
/// fails the placement/dM1 audit.
#[must_use]
pub fn measure_with(
    tc: &Testcase,
    vm1_cfg: &Vm1Config,
    metrics: &MetricsHandle,
) -> (Snapshot, RouteResult) {
    // Every experiment path measures through here, so this one checkpoint
    // covers all experiment binaries when `--audit` is on.
    crate::audit_mode::audit_checkpoint(&tc.design, vm1_cfg, "measure");
    let r = metrics.timed(Stage::Route, || route(&tc.design, &tc.router));
    let (timing, p) = metrics.timed(Stage::Analysis, || {
        let timing = analyze(&tc.design, Some(&r), tc.clock_ps).expect("acyclic netlist"); // lint: allow(documented `# Panics` contract)
        let p = power(&tc.design, Some(&r), tc.clock_ps);
        (timing, p)
    });
    let obj = calculate_obj(&tc.design, vm1_cfg);
    let snap = Snapshot {
        dm1: r.metrics.num_dm1,
        m1_wl: r.metrics.m1_wl(),
        via12: r.metrics.via12(),
        hpwl: tc.design.total_hpwl(),
        rwl: r.metrics.routed_wl,
        wns_ns: timing.wns_ns_paper(),
        power_mw: p.total_mw(),
        drvs: r.metrics.drvs,
        alignments: obj.alignments,
    };
    (snap, r)
}

/// The full ExptB flow on a testcase: measure Init, run `VM1Opt`,
/// re-route, measure Final.
///
/// The whole flow is instrumented: the returned row carries the full
/// telemetry report (optimizer counters, stage times including
/// [`Stage::Route`]/[`Stage::Analysis`], and the objective trajectory).
///
/// # Panics
///
/// Panics if the optimizer leaves an illegal placement behind (the
/// `--audit` invariants catch this earlier in debug builds).
#[must_use]
pub fn optimize_and_measure(tc: &mut Testcase, vm1_cfg: &Vm1Config) -> ExperimentRow {
    let telemetry = Arc::new(Telemetry::new());
    let metrics = MetricsHandle::of(telemetry.clone());
    let (init, _) = measure_with(tc, vm1_cfg, &metrics);
    let stats = Vm1Optimizer::new(vm1_cfg.clone())
        .with_metrics(telemetry.clone())
        .run(&mut tc.design);
    tc.design
        .validate_placement()
        .expect("optimizer preserves legality"); // lint: allow(documented `# Panics` contract)
    crate::audit_mode::audit_checkpoint(&tc.design, vm1_cfg, "post-optimize");
    let (fin, _) = measure_with(tc, vm1_cfg, &metrics);
    ExperimentRow {
        design: tc.design.name().to_owned(),
        insts: tc.design.num_insts(),
        util: tc.design.utilization(),
        alpha: vm1_cfg.alpha,
        init,
        fin,
        runtime_ms: stats.runtime_ms,
        metrics: Some(telemetry.report()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm1_core::ParamSet;

    fn tiny(arch: CellArch) -> FlowConfig {
        FlowConfig::new(DesignProfile::M0, arch)
            .with_scale(0.015)
            .with_seed(7)
    }

    #[test]
    fn build_testcase_meets_timing_at_init() {
        let tc = build_testcase(&tiny(CellArch::ClosedM1));
        let (snap, _) = measure(&tc, &Vm1Config::closedm1());
        assert_eq!(snap.wns_ns, 0.0, "calibrated clock closes timing");
        assert!(snap.rwl.nm() > 0);
        assert!(snap.power_mw > 0.0);
    }

    #[test]
    fn optimize_and_measure_improves_dm1() {
        let mut tc = build_testcase(&tiny(CellArch::ClosedM1));
        let cfg = Vm1Config::closedm1().with_sequence(vec![ParamSet::new(3.0, 3, 1)]);
        let row = optimize_and_measure(&mut tc, &cfg);
        assert!(
            row.fin.dm1 >= row.init.dm1,
            "dM1 {} -> {}",
            row.init.dm1,
            row.fin.dm1
        );
        assert!(row.fin.alignments >= row.init.alignments);
        // Row renders without panicking.
        let line = row.table_line();
        assert!(line.contains("m0_like"));
    }

    #[test]
    fn openm1_flow_works() {
        let mut tc = build_testcase(&tiny(CellArch::OpenM1));
        let cfg = Vm1Config::openm1().with_sequence(vec![ParamSet::new(3.0, 3, 1)]);
        let row = optimize_and_measure(&mut tc, &cfg);
        assert!(row.fin.alignments >= row.init.alignments);
    }
}
