//! Measurement snapshots and Table 2-style reporting.

use vm1_geom::Dbu;
use vm1_obs::{Counter, MetricsReport, SchedGauge, Stage};

/// Metrics of a routed design at one point of the flow — the columns of
/// the paper's Table 2.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Direct vertical M1 routes (#dM1).
    pub dm1: usize,
    /// M1 wirelength (nm).
    pub m1_wl: Dbu,
    /// Via count between M1 and M2 (#via12).
    pub via12: usize,
    /// Half-perimeter wirelength (nm).
    pub hpwl: Dbu,
    /// Routed wirelength (nm).
    pub rwl: Dbu,
    /// Worst negative slack as the paper prints it (ns; 0.000 when met).
    pub wns_ns: f64,
    /// Total power (mW).
    pub power_mw: f64,
    /// Design-rule-violation proxy count.
    pub drvs: usize,
    /// Vertically alignable pin pairs in the placement (Σ d_pq).
    pub alignments: usize,
}

/// One design row of Table 2: Init vs Final plus run metadata.
#[derive(Clone, Debug)]
pub struct ExperimentRow {
    /// Design name.
    pub design: String,
    /// Instance count.
    pub insts: usize,
    /// Target utilization.
    pub util: f64,
    /// α used.
    pub alpha: f64,
    /// Before optimization.
    pub init: Snapshot,
    /// After optimization + re-route.
    pub fin: Snapshot,
    /// Optimizer runtime (ms).
    pub runtime_ms: u64,
    /// Telemetry of the optimize-and-measure run (counters, stage times,
    /// objective trajectory), when the flow was instrumented.
    pub metrics: Option<MetricsReport>,
}

impl ExperimentRow {
    /// Percentage change helper (`(fin - init) / init · 100`).
    fn pct(init: f64, fin: f64) -> f64 {
        if init.abs() < 1e-12 {
            0.0
        } else {
            (fin - init) / init * 100.0
        }
    }

    /// Δ% of routed wirelength (negative = reduction, the paper's
    /// headline metric).
    #[must_use]
    pub fn rwl_delta_pct(&self) -> f64 {
        Self::pct(self.init.rwl.nm() as f64, self.fin.rwl.nm() as f64)
    }

    /// Δ% of #via12.
    #[must_use]
    pub fn via12_delta_pct(&self) -> f64 {
        Self::pct(self.init.via12 as f64, self.fin.via12 as f64)
    }

    /// Δ% of HPWL.
    #[must_use]
    pub fn hpwl_delta_pct(&self) -> f64 {
        Self::pct(self.init.hpwl.nm() as f64, self.fin.hpwl.nm() as f64)
    }

    /// Ratio of final to initial #dM1 (the paper reports > 4× for
    /// ClosedM1).
    #[must_use]
    pub fn dm1_ratio(&self) -> f64 {
        if self.init.dm1 == 0 {
            if self.fin.dm1 == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.fin.dm1 as f64 / self.init.dm1 as f64
        }
    }

    /// One formatted line in the style of Table 2.
    #[must_use]
    pub fn table_line(&self) -> String {
        format!(
            "{:<10} {:>6} {:>4.0}% {:>6.0} | dM1 {:>6} -> {:>6} ({:>6.1}x) | M1WL {:>9} -> {:>9} | via12 {:>6} -> {:>6} ({:>+6.1}%) | HPWL(um) {:>9.1} -> {:>9.1} ({:>+5.1}%) | RWL(um) {:>9.1} -> {:>9.1} ({:>+5.1}%) | WNS {:>6.3} -> {:>6.3} | P(mW) {:>7.3} -> {:>7.3} | {:>7} ms",
            self.design,
            self.insts,
            self.util * 100.0,
            self.alpha,
            self.init.dm1,
            self.fin.dm1,
            self.dm1_ratio(),
            self.init.m1_wl.nm(),
            self.fin.m1_wl.nm(),
            self.init.via12,
            self.fin.via12,
            self.via12_delta_pct(),
            self.init.hpwl.to_um(),
            self.fin.hpwl.to_um(),
            self.hpwl_delta_pct(),
            self.init.rwl.to_um(),
            self.fin.rwl.to_um(),
            self.rwl_delta_pct(),
            self.init.wns_ns,
            self.fin.wns_ns,
            self.init.power_mw,
            self.fin.power_mw,
            self.runtime_ms,
        )
    }
}

/// Formats a telemetry report as a human-readable summary table:
/// solver-work counters, per-stage wall times, parallel utilization, and
/// the per-ParamSet objective/alignment trajectory.
#[must_use]
pub fn format_metrics_summary(r: &MetricsReport) -> String {
    let mut out = String::from("-- telemetry --\n");
    out.push_str("counter                    value\n");
    for c in Counter::ALL {
        let v = r.counter(c);
        if v > 0 {
            out.push_str(&format!("{:<24} {:>8}\n", c.name(), v));
        }
    }
    out.push_str("stage                    ms      calls\n");
    for s in Stage::ALL {
        if r.stage_calls(s) > 0 {
            out.push_str(&format!(
                "{:<20} {:>10.1} {:>8}\n",
                s.name(),
                r.stage_ms(s),
                r.stage_calls(s)
            ));
        }
    }
    if SchedGauge::ALL.iter().any(|&g| r.gauge(g) > 0) {
        out.push_str("scheduler                  value\n");
        for g in SchedGauge::ALL {
            let v = r.gauge(g);
            if v > 0 {
                out.push_str(&format!("{:<24} {:>8}\n", g.name(), v));
            }
        }
    }
    if let Some(u) = r.parallel_utilization() {
        out.push_str(&format!("parallel utilization {u:>10.2}\n"));
    }
    if !r.trajectory().is_empty() {
        out.push_str("trajectory (param_set, iteration, objective, hpwl_nm, alignments)\n");
        for p in r.trajectory() {
            out.push_str(&format!(
                "  u{} it{:<3} obj {:>14.1} hpwl {:>12} align {:>6}\n",
                p.param_set, p.iteration, p.objective, p.hpwl_nm, p.alignments
            ));
        }
    }
    out
}

/// Formats rows as a Table 2-style block with a header.
#[must_use]
pub fn format_table2(title: &str, rows: &[ExperimentRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(
        "design      #Inst util  alpha |  #dM1 Init -> Final  | M1 WL (nm)            | #via12              | HPWL               | RWL                 | WNS (ns)        | Power            | runtime\n",
    );
    for r in rows {
        out.push_str(&r.table_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> ExperimentRow {
        ExperimentRow {
            design: "aes_like".into(),
            insts: 1234,
            util: 0.75,
            alpha: 1200.0,
            init: Snapshot {
                dm1: 100,
                m1_wl: Dbu(50_000),
                via12: 4000,
                hpwl: Dbu(3_000_000),
                rwl: Dbu(3_500_000),
                wns_ns: 0.0,
                power_mw: 3.2,
                drvs: 0,
                alignments: 120,
            },
            fin: Snapshot {
                dm1: 450,
                m1_wl: Dbu(45_000),
                via12: 3500,
                hpwl: Dbu(2_950_000),
                rwl: Dbu(3_300_000),
                wns_ns: 0.0,
                power_mw: 3.15,
                drvs: 0,
                alignments: 500,
            },
            runtime_ms: 1234,
            metrics: None,
        }
    }

    #[test]
    fn percentage_helpers() {
        let r = row();
        assert!((r.rwl_delta_pct() - (-5.714_285)).abs() < 1e-3);
        assert!((r.via12_delta_pct() - (-12.5)).abs() < 1e-9);
        assert!((r.dm1_ratio() - 4.5).abs() < 1e-9);
        assert!(r.hpwl_delta_pct() < 0.0);
    }

    #[test]
    fn zero_init_dm1_ratio_is_safe() {
        let mut r = row();
        r.init.dm1 = 0;
        assert!(r.dm1_ratio().is_infinite());
        r.fin.dm1 = 0;
        assert_eq!(r.dm1_ratio(), 1.0);
    }

    #[test]
    fn table_formatting_contains_key_fields() {
        let text = format_table2("ClosedM1-based designs", &[row()]);
        assert!(text.contains("aes_like"));
        assert!(text.contains("ClosedM1-based designs"));
        assert!(text.contains("4.5x"));
    }

    #[test]
    fn metrics_summary_shows_active_counters_and_stages_only() {
        use vm1_obs::{Telemetry, TrajectoryPoint};
        let t = Telemetry::new();
        use vm1_obs::MetricsSink;
        t.add(Counter::BbNodes, 7);
        t.record_time(Stage::Route, 3_000_000);
        t.record_point(TrajectoryPoint {
            param_set: 0,
            iteration: 1,
            objective: -10.0,
            hpwl_nm: 500,
            alignments: 3,
        });
        let text = format_metrics_summary(&t.report());
        assert!(text.contains("bb_nodes"));
        assert!(!text.contains("cache_hits"), "zero counters are elided");
        assert!(text.contains("route"));
        assert!(!text.contains("milp_solve"), "untimed stages are elided");
        assert!(text.contains("trajectory"));
        assert!(text.contains("u0 it1"));
        assert!(
            !text.contains("scheduler"),
            "gauge section is elided when no gauge fired"
        );
    }

    #[test]
    fn metrics_summary_shows_scheduler_gauges() {
        use vm1_obs::{MetricsSink, Telemetry};
        let t = Telemetry::new();
        t.record_gauge(SchedGauge::Steals, 5);
        t.record_gauge(SchedGauge::TasksExecuted, 40);
        let text = format_metrics_summary(&t.report());
        assert!(text.contains("scheduler"));
        assert!(text.contains("sched_steals"));
        assert!(text.contains("sched_tasks_executed"));
        assert!(
            !text.contains("sched_queue_high_water"),
            "zero gauges are elided"
        );
    }
}
