//! Smoke runs of every experiment driver: each figure/table generator
//! must execute end-to-end and reproduce the paper's qualitative
//! direction at toy scale.

use vm1_flow::experiments::{expt_a1, expt_a2, expt_a3, expt_b, expt_fig8, ExperimentScale};
use vm1_tech::CellArch;

#[test]
fn figure5_smoke_runs_and_reports_points() {
    let rows = expt_a1(ExperimentScale::Smoke);
    assert_eq!(rows.len(), 2);
    for r in &rows {
        assert!(r.rwl_um > 0.0);
    }
    // Window sizes differ between the two points (the runtime-vs-window
    // trend itself is asserted at Reduced scale by the bench harness, not
    // at smoke scale where runtimes are noise).
    assert!(rows[0].bw_um < rows[1].bw_um);
}

#[test]
fn figure6_smoke_alpha_grows_alignments() {
    let rows = expt_a2(ExperimentScale::Smoke, CellArch::ClosedM1);
    let zero = &rows[0];
    let paper = &rows[1];
    assert_eq!(zero.alpha, 0.0);
    assert!(paper.alignments >= zero.alignments, "α pulls pins together");
    assert!(paper.dm1 >= zero.dm1);
}

#[test]
fn figure7_smoke_sequences_run() {
    let rows = expt_a3(ExperimentScale::Smoke);
    assert_eq!(rows.len(), 2);
    for r in &rows {
        assert!(r.rwl_um > 0.0);
        assert!(!r.label.is_empty());
    }
}

#[test]
fn table2_smoke_closedm1_direction() {
    let rows = expt_b(ExperimentScale::Smoke, CellArch::ClosedM1);
    assert_eq!(rows.len(), 1);
    let r = &rows[0];
    assert!(r.fin.dm1 >= r.init.dm1, "optimizer must not lose dM1");
    assert!(r.fin.alignments >= r.init.alignments);
    assert_eq!(r.init.wns_ns, 0.0, "calibrated init meets timing");
}

#[test]
fn table2_smoke_openm1_runs() {
    let rows = expt_b(ExperimentScale::Smoke, CellArch::OpenM1);
    assert_eq!(rows.len(), 1);
    assert!(rows[0].fin.alignments >= rows[0].init.alignments);
}

#[test]
fn figure8_smoke_runs() {
    let rows = expt_fig8(ExperimentScale::Smoke);
    assert_eq!(rows.len(), 1);
    let r = &rows[0];
    assert!(r.dm1_opt > 0);
    assert!(
        r.drvs_opt <= r.drvs_orig + 2,
        "optimization must not blow up DRVs"
    );
}
