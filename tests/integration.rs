//! Cross-crate integration tests: generator → placer → router → optimizer
//! → timer chains, invariants that span module boundaries, and the
//! paper's qualitative claims on small designs.

use vm1_core::{calculate_obj, count_alignments, ParamSet, SolverKind, Vm1Config, Vm1Optimizer};
use vm1_flow::{build_testcase, measure, optimize_and_measure, FlowConfig};
use vm1_netlist::generator::DesignProfile;
use vm1_netlist::io::{read_def, write_def};
use vm1_route::{route, RouterConfig};
use vm1_tech::{CellArch, Library};

fn flow(arch: CellArch, seed: u64) -> FlowConfig {
    FlowConfig::new(DesignProfile::M0, arch)
        .with_scale(0.015)
        .with_seed(seed)
}

#[test]
fn closedm1_end_to_end_improves_dm1_without_drv_increase() {
    let mut tc = build_testcase(&flow(CellArch::ClosedM1, 1));
    let cfg = Vm1Config::closedm1().with_sequence(vec![ParamSet::new(3.0, 3, 1)]);
    let row = optimize_and_measure(&mut tc, &cfg);
    assert!(row.fin.dm1 >= row.init.dm1, "#dM1 must not drop");
    assert!(row.fin.alignments >= row.init.alignments);
    assert!(row.fin.drvs <= row.init.drvs + 2, "no DRV explosion");
    tc.design.validate_placement().unwrap();
    tc.design.validate_connectivity().unwrap();
}

#[test]
fn objective_decreases_monotonically_through_vm1opt() {
    let mut tc = build_testcase(&flow(CellArch::ClosedM1, 2));
    let cfg = Vm1Config::closedm1().with_sequence(vec![ParamSet::new(3.0, 3, 1)]);
    let before = calculate_obj(&tc.design, &cfg).value;
    let stats = Vm1Optimizer::new(cfg.clone()).run(&mut tc.design);
    let after = calculate_obj(&tc.design, &cfg).value;
    assert!(after <= before + 1e-6);
    assert_eq!(stats.final_obj, after);
    assert_eq!(stats.initial_obj, before);
}

#[test]
fn optimized_placement_survives_def_round_trip() {
    let mut tc = build_testcase(&flow(CellArch::ClosedM1, 3));
    let cfg = Vm1Config::closedm1().with_sequence(vec![ParamSet::new(3.0, 2, 1)]);
    let _ = Vm1Optimizer::new(cfg.clone()).run(&mut tc.design);
    let lib = Library::synthetic_7nm(CellArch::ClosedM1);
    let text = write_def(&tc.design);
    let back = read_def(&text, &lib).expect("round trip");
    assert_eq!(back.total_hpwl(), tc.design.total_hpwl());
    assert_eq!(
        count_alignments(&back, &cfg),
        count_alignments(&tc.design, &cfg)
    );
    // Re-routing the reloaded design gives identical metrics.
    let r1 = route(&tc.design, &RouterConfig::default());
    let r2 = route(&back, &RouterConfig::default());
    assert_eq!(r1.metrics, r2.metrics);
}

#[test]
fn alignment_count_predicts_dm1_gain() {
    // The placement-side alignment count (what the MILP maximizes) and the
    // router-side dM1 count (what the paper measures) must move together.
    let mut tc = build_testcase(&flow(CellArch::ClosedM1, 4));
    let cfg = Vm1Config::closedm1().with_sequence(vec![ParamSet::new(3.0, 3, 1)]);
    let (init, _) = measure(&tc, &cfg);
    let _ = Vm1Optimizer::new(cfg.clone()).run(&mut tc.design);
    let (fin, _) = measure(&tc, &cfg);
    let d_align = fin.alignments as i64 - init.alignments as i64;
    let d_dm1 = fin.dm1 as i64 - init.dm1 as i64;
    assert!(d_align >= 0);
    if d_align > 0 {
        assert!(d_dm1 >= 0, "more alignments must not reduce dM1");
    }
}

#[test]
fn openm1_end_to_end() {
    let mut tc = build_testcase(&flow(CellArch::OpenM1, 5));
    let cfg = Vm1Config::openm1().with_sequence(vec![ParamSet::new(3.0, 3, 1)]);
    let row = optimize_and_measure(&mut tc, &cfg);
    assert!(row.fin.alignments >= row.init.alignments);
    tc.design.validate_placement().unwrap();
}

#[test]
fn conventional_library_sees_no_dm1_at_all() {
    let tc = build_testcase(&flow(CellArch::Conv12T, 6));
    let cfg = Vm1Config::closedm1();
    let (snap, _) = measure(&tc, &cfg);
    assert_eq!(snap.dm1, 0, "12T M1 PG rails forbid inter-row M1");
    assert_eq!(snap.alignments, 0);
}

#[test]
fn milp_and_dfs_solvers_agree_end_to_end() {
    let base = build_testcase(&flow(CellArch::ClosedM1, 7));
    let seq = vec![ParamSet::new(2.0, 2, 0)];
    let mut d_dfs = base.design.clone();
    let mut d_milp = base.design.clone();
    let cfg_dfs = Vm1Config::closedm1()
        .with_sequence(seq.clone())
        .with_solver(SolverKind::Dfs);
    let mut cfg_milp = Vm1Config::closedm1()
        .with_sequence(seq)
        .with_solver(SolverKind::Milp);
    cfg_milp.max_cells_per_milp = 4; // keep the MILP runs small
    let mut cfg_dfs = cfg_dfs;
    cfg_dfs.max_cells_per_milp = 4;
    let s1 = Vm1Optimizer::new(cfg_dfs.clone()).run(&mut d_dfs);
    let s2 = Vm1Optimizer::new(cfg_milp.clone()).run(&mut d_milp);
    // Both engines are exact per window (asserted variable-by-variable in
    // vm1-core's solver tests), but ties between equal optima may be
    // broken differently, so the end-to-end trajectories can diverge
    // slightly. Require both to improve and to land close together.
    assert!(s1.final_obj <= s1.initial_obj + 1e-6);
    assert!(s2.final_obj <= s2.initial_obj + 1e-6);
    let rel = (s1.final_obj - s2.final_obj).abs() / s1.final_obj.abs().max(1.0);
    assert!(
        rel < 0.05,
        "dfs {} vs milp {} diverged by {:.1}%",
        s1.final_obj,
        s2.final_obj,
        rel * 100.0
    );
    d_dfs.validate_placement().unwrap();
    d_milp.validate_placement().unwrap();
}

#[test]
fn fixed_cells_are_never_moved_by_the_optimizer() {
    let mut tc = build_testcase(&flow(CellArch::ClosedM1, 8));
    // Fix a third of the cells.
    let victims: Vec<_> = tc
        .design
        .insts()
        .map(|(id, _)| id)
        .filter(|id| id.0 % 3 == 0)
        .collect();
    for &v in &victims {
        tc.design.inst_mut(v).fixed = true;
    }
    let before: Vec<_> = victims
        .iter()
        .map(|&v| {
            let i = tc.design.inst(v);
            (i.site, i.row, i.orient)
        })
        .collect();
    let cfg = Vm1Config::closedm1().with_sequence(vec![ParamSet::new(3.0, 3, 1)]);
    let _ = Vm1Optimizer::new(cfg.clone()).run(&mut tc.design);
    for (&v, &b) in victims.iter().zip(&before) {
        let i = tc.design.inst(v);
        assert_eq!((i.site, i.row, i.orient), b, "fixed cell moved");
    }
}
